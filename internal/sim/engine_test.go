package sim

import (
	"errors"
	"strings"
	"testing"
)

// run is a test helper that builds and runs an engine.
func run(t *testing.T, cfg Config, scripts func(int) Script) Result {
	t.Helper()
	res, err := New(cfg, scripts).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSingleProcessWorks(t *testing.T) {
	res := run(t, Config{NumProcs: 1, NumUnits: 3}, func(int) Script {
		return func(p *Proc) {
			for u := 1; u <= 3; u++ {
				p.StepWork(u)
			}
			p.Halt()
		}
	})
	if res.WorkTotal != 3 || res.WorkDistinct != 3 {
		t.Fatalf("work = %d distinct %d, want 3/3", res.WorkTotal, res.WorkDistinct)
	}
	if !res.Complete() {
		t.Fatal("run should be complete")
	}
	if res.Survivors != 1 {
		t.Fatalf("survivors = %d, want 1", res.Survivors)
	}
	if res.CompletedRound != 2 {
		t.Fatalf("completed round = %d, want 2 (rounds 0,1,2)", res.CompletedRound)
	}
}

func TestMessageDeliveredNextRound(t *testing.T) {
	gotAt := int64(-1)
	run(t, Config{NumProcs: 2, NumUnits: 0}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				p.StepSend(Send{To: 1, Payload: "hi"})
				p.Halt()
			}
		}
		return func(p *Proc) {
			msgs := p.WaitUntil(100)
			if len(msgs) == 1 && msgs[0].Payload == "hi" {
				gotAt = p.Now()
			}
			p.Halt()
		}
	})
	if gotAt != 1 {
		t.Fatalf("message received at round %d, want 1 (sent at round 0)", gotAt)
	}
}

func TestWaitUntilTimeout(t *testing.T) {
	var woke int64
	res := run(t, Config{NumProcs: 1, NumUnits: 0}, func(int) Script {
		return func(p *Proc) {
			msgs := p.WaitUntil(50)
			if len(msgs) != 0 {
				t.Errorf("unexpected messages: %v", msgs)
			}
			woke = p.Now()
			p.Halt()
		}
	})
	if woke != 50 {
		t.Fatalf("woke at %d, want 50", woke)
	}
	// Fast-forwarding means only a couple of events were simulated.
	if res.Events > 5 {
		t.Fatalf("events = %d, expected fast-forward to skip the wait", res.Events)
	}
	if res.Rounds != 50 {
		t.Fatalf("rounds = %d, want 50", res.Rounds)
	}
}

func TestFastForwardHugeDeadline(t *testing.T) {
	const deadline = int64(1) << 50
	res := run(t, Config{NumProcs: 2, NumUnits: 0}, func(id int) Script {
		return func(p *Proc) {
			p.WaitUntil(deadline + int64(id))
			p.Halt()
		}
	})
	if res.Rounds != deadline+1 {
		t.Fatalf("rounds = %d, want %d", res.Rounds, deadline+1)
	}
	if res.Events > 10 {
		t.Fatalf("events = %d, want a handful despite 2^50 rounds", res.Events)
	}
}

func TestMessageWakesSleeper(t *testing.T) {
	var woke int64
	run(t, Config{NumProcs: 2, NumUnits: 0}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				for i := 0; i < 5; i++ {
					p.StepIdle()
				}
				p.StepSend(Send{To: 1, Payload: 42})
				p.Halt()
			}
		}
		return func(p *Proc) {
			msgs := p.WaitUntil(1 << 40)
			if len(msgs) != 1 {
				t.Errorf("got %d messages, want 1", len(msgs))
			}
			woke = p.Now()
			p.Halt()
		}
	})
	if woke != 6 {
		t.Fatalf("sleeper woke at %d, want 6 (send at round 5)", woke)
	}
}

// scriptedAdversary crashes a given pid at its k-th action with a chosen
// verdict.
type scriptedAdversary struct {
	NopAdversary
	pid     int
	atCount int
	verdict Verdict
	seen    int
}

func (a *scriptedAdversary) OnAction(_ int64, pid int, _ Action) Verdict {
	if pid != a.pid {
		return Survive()
	}
	a.seen++
	if a.seen == a.atCount {
		return a.verdict
	}
	return Survive()
}

func TestCrashMidBroadcastDeliversSubset(t *testing.T) {
	adv := &scriptedAdversary{
		pid: 0, atCount: 1,
		verdict: Verdict{Crash: true, Deliver: []bool{true, false, true}},
	}
	received := make(map[int]bool)
	res := run(t, Config{NumProcs: 4, NumUnits: 0, Adversary: adv}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				p.StepSend(
					Send{To: 1, Payload: "x"},
					Send{To: 2, Payload: "x"},
					Send{To: 3, Payload: "x"},
				)
				p.Halt()
			}
		}
		return func(p *Proc) {
			msgs := p.WaitUntil(10)
			if len(msgs) > 0 {
				received[p.ID()] = true
			}
			p.Halt()
		}
	})
	if !received[1] || received[2] || !received[3] {
		t.Fatalf("received = %v, want {1,3}", received)
	}
	if res.Messages != 2 {
		t.Fatalf("messages = %d, want 2 (only delivered subset counts)", res.Messages)
	}
	if res.Crashes != 1 || res.Survivors != 3 {
		t.Fatalf("crashes=%d survivors=%d, want 1/3", res.Crashes, res.Survivors)
	}
}

func TestCrashKeepWorkSemantics(t *testing.T) {
	for _, keep := range []bool{true, false} {
		adv := &scriptedAdversary{
			pid: 0, atCount: 1,
			verdict: Verdict{Crash: true, KeepWork: keep},
		}
		res := run(t, Config{NumProcs: 1, NumUnits: 1, Adversary: adv}, func(int) Script {
			return func(p *Proc) {
				p.StepWork(1)
				p.Halt()
			}
		})
		want := int64(0)
		if keep {
			want = 1
		}
		if res.WorkTotal != want {
			t.Fatalf("keep=%v: work = %d, want %d", keep, res.WorkTotal, want)
		}
	}
}

// schedAdversary implements scheduled crashes at fixed rounds.
type schedAdversary struct {
	NopAdversary
	at map[int64][]int
}

func (a *schedAdversary) ScheduledCrashes(r int64) []int { return a.at[r] }
func (a *schedAdversary) NextScheduledCrash(after int64) int64 {
	next := int64(-1)
	for r := range a.at {
		if r > after && (next < 0 || r < next) {
			next = r
		}
	}
	return next
}

func TestScheduledCrashOfSleeper(t *testing.T) {
	adv := &schedAdversary{at: map[int64][]int{7: {1}}}
	res := run(t, Config{NumProcs: 2, NumUnits: 0, Adversary: adv}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				p.WaitUntil(20)
				p.Halt()
			}
		}
		return func(p *Proc) {
			p.WaitUntil(1 << 40) // would sleep forever; the crash must interrupt
			p.Halt()
		}
	})
	if res.PerProc[1].Status != StatusCrashed {
		t.Fatalf("proc 1 status = %v, want crashed", res.PerProc[1].Status)
	}
	if res.PerProc[1].RetireRound != 7 {
		t.Fatalf("proc 1 retired at %d, want 7", res.PerProc[1].RetireRound)
	}
	// Fast-forward must not have skipped over the scheduled crash.
	if res.Rounds != 20 {
		t.Fatalf("rounds = %d, want 20", res.Rounds)
	}
}

func TestMaxActiveInvariant(t *testing.T) {
	_, err := New(Config{NumProcs: 2, NumUnits: 0, MaxActive: 1}, func(id int) Script {
		return func(p *Proc) {
			p.SetActive(true)
			p.StepIdle()
			p.StepIdle()
			p.Halt()
		}
	}).Run()
	if err == nil || !strings.Contains(err.Error(), "invariant") {
		t.Fatalf("want invariant violation error, got %v", err)
	}
}

func TestRoundLimit(t *testing.T) {
	_, err := New(Config{NumProcs: 1, NumUnits: 0, MaxRound: 10}, func(int) Script {
		return func(p *Proc) {
			for {
				p.StepIdle()
			}
		}
	}).Run()
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("want ErrRoundLimit, got %v", err)
	}
}

func TestScriptPanicSurfacesAsError(t *testing.T) {
	_, err := New(Config{NumProcs: 1, NumUnits: 0}, func(int) Script {
		return func(p *Proc) {
			panic("boom")
		}
	}).Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want panic error, got %v", err)
	}
}

func TestScriptReturnIsHalt(t *testing.T) {
	res := run(t, Config{NumProcs: 1, NumUnits: 0}, func(int) Script {
		return func(p *Proc) { p.StepIdle() }
	})
	if res.Survivors != 1 {
		t.Fatalf("survivors = %d, want 1", res.Survivors)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() (Result, error) {
		return New(Config{NumProcs: 4, NumUnits: 8, DetailedMetrics: true}, func(id int) Script {
			return func(p *Proc) {
				if id == 0 {
					for u := 1; u <= 8; u++ {
						p.StepWorkSend(u, Send{To: 1 + (u % 3), Payload: u})
					}
					p.Halt()
				}
				for {
					msgs := p.WaitUntil(100)
					if len(msgs) == 0 {
						p.Halt()
					}
				}
			}
		}).Run()
	}
	r1, err1 := mk()
	r2, err2 := mk()
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	if r1.WorkTotal != r2.WorkTotal || r1.Messages != r2.Messages || r1.Rounds != r2.Rounds ||
		r1.Events != r2.Events {
		t.Fatalf("nondeterministic results: %+v vs %+v", r1, r2)
	}
}

func TestResleepInvalidatesOldWakeTime(t *testing.T) {
	// A sleeper woken early by a message re-sleeps with a *longer* deadline;
	// the stale (shorter) heap entry must not wake it early.
	var woke int64
	run(t, Config{NumProcs: 2, NumUnits: 0}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				p.StepSend(Send{To: 1, Payload: "poke"})
				p.Halt()
			}
		}
		return func(p *Proc) {
			p.WaitUntil(10) // interrupted at round 1 by the poke
			p.WaitUntil(40) // stale entry for round 10 must be ignored
			woke = p.Now()
			p.Halt()
		}
	})
	if woke != 40 {
		t.Fatalf("re-sleeper woke at %d, want 40", woke)
	}
}

func TestResleepShorterDeadline(t *testing.T) {
	// The opposite order: woken early, then re-sleeps with a shorter deadline
	// than the original; the new wake time must fire, not the stale one.
	var woke int64
	run(t, Config{NumProcs: 2, NumUnits: 0}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				p.StepSend(Send{To: 1, Payload: "poke"})
				p.Halt()
			}
		}
		return func(p *Proc) {
			p.WaitUntil(1 << 40)
			p.WaitUntil(7)
			woke = p.Now()
			p.Halt()
		}
	})
	if woke != 7 {
		t.Fatalf("re-sleeper woke at %d, want 7", woke)
	}
}

func TestStaggeredWakeOrder(t *testing.T) {
	// Many sleepers with interleaved deadlines: each must wake exactly at its
	// own deadline even as the engine fast-forwards between them.
	const procs = 9
	wokeAt := make([]int64, procs)
	run(t, Config{NumProcs: procs, NumUnits: 0}, func(id int) Script {
		return func(p *Proc) {
			// Deadlines deliberately not in PID order: 100, 91, 82, ...
			deadline := int64(100 - 9*id)
			p.WaitUntil(deadline)
			wokeAt[p.ID()] = p.Now()
			p.Halt()
		}
	})
	for id := 0; id < procs; id++ {
		if want := int64(100 - 9*id); wokeAt[id] != want {
			t.Fatalf("proc %d woke at %d, want %d", id, wokeAt[id], want)
		}
	}
}

func TestPendingBufferReuseKeepsPayloads(t *testing.T) {
	// Messages sent every round exercise the recycled pending buffer; each
	// payload must arrive intact exactly one round after its send.
	const rounds = 20
	var got []int
	run(t, Config{NumProcs: 2, NumUnits: 0}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				for i := 0; i < rounds; i++ {
					p.StepSend(Send{To: 1, Payload: i})
				}
				p.Halt()
			}
		}
		return func(p *Proc) {
			for len(got) < rounds {
				for _, m := range p.WaitUntil(1 << 40) {
					if m.SentAt != p.Now()-1 {
						t.Errorf("payload %v sent at %d, received at %d", m.Payload, m.SentAt, p.Now())
					}
					got = append(got, m.Payload.(int))
				}
			}
			p.Halt()
		}
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d; payloads corrupted: %v", i, v, got)
		}
	}
}

func TestScheduledCrashOfRunnableProc(t *testing.T) {
	// A non-sleeping (runnable) process crashed at a round boundary must not
	// be resumed in that round.
	adv := &schedAdversary{at: map[int64][]int{3: {0}}}
	var lastActed int64
	res := run(t, Config{NumProcs: 2, NumUnits: 0, Adversary: adv}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				for {
					lastActed = p.Now()
					p.StepIdle()
				}
			}
		}
		return func(p *Proc) {
			p.WaitUntil(10)
			p.Halt()
		}
	})
	if lastActed != 2 {
		t.Fatalf("crashed proc last acted at round %d, want 2", lastActed)
	}
	if res.PerProc[0].Status != StatusCrashed || res.PerProc[0].RetireRound != 3 {
		t.Fatalf("proc 0 = %+v, want crashed at 3", res.PerProc[0])
	}
}

func TestManyProcsWordBoundaries(t *testing.T) {
	// More than 64 processes exercises multi-word run-queue iteration; every
	// process must still act in ascending ID order within a round.
	const procs = 130
	var order []int
	res := run(t, Config{NumProcs: procs, NumUnits: procs}, func(id int) Script {
		return func(p *Proc) {
			order = append(order, p.ID())
			p.StepWork(p.ID() + 1)
			p.Halt()
		}
	})
	if len(order) != procs {
		t.Fatalf("resumed %d procs, want %d", len(order), procs)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("resume order[%d] = %d, want ascending IDs", i, id)
		}
	}
	if !res.Complete() || res.Survivors != procs {
		t.Fatalf("complete=%v survivors=%d", res.Complete(), res.Survivors)
	}
}

func TestActiveCountSurvivesRetirement(t *testing.T) {
	// A process that halts while active must release the active slot so a
	// successor can claim it without tripping the invariant.
	res := run(t, Config{NumProcs: 2, NumUnits: 0, MaxActive: 1}, func(id int) Script {
		return func(p *Proc) {
			if id == 0 {
				p.SetActive(true)
				p.StepIdle()
				p.Halt()
			}
			p.WaitUntil(2)
			p.SetActive(true)
			p.StepIdle()
			p.Halt()
		}
	})
	if res.Survivors != 2 {
		t.Fatalf("survivors = %d, want 2", res.Survivors)
	}
}

func TestPerProcStats(t *testing.T) {
	res := run(t, Config{NumProcs: 2, NumUnits: 2}, func(id int) Script {
		return func(p *Proc) {
			p.StepWorkSend(p.ID()+1, Send{To: 1 - p.ID(), Payload: "m"})
			p.Halt()
		}
	})
	for pid := 0; pid < 2; pid++ {
		st := res.PerProc[pid]
		if st.Work != 1 || st.Sent != 1 || st.Status != StatusTerminated {
			t.Fatalf("proc %d stats = %+v", pid, st)
		}
	}
}

func TestMessagesByKind(t *testing.T) {
	res := run(t, Config{NumProcs: 2, NumUnits: 0, DetailedMetrics: true}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				p.StepSend(Send{To: 1, Payload: "str"})
				p.StepSend(Send{To: 1, Payload: 7})
				p.Halt()
			}
		}
		return func(p *Proc) {
			p.WaitUntil(3)
			p.WaitUntil(4)
			p.Halt()
		}
	})
	if res.MessagesByKind["string"] != 1 || res.MessagesByKind["int"] != 1 {
		t.Fatalf("kinds = %v", res.MessagesByKind)
	}
}

func TestBroadcastHelperSkipsSelf(t *testing.T) {
	run(t, Config{NumProcs: 3, NumUnits: 0}, func(id int) Script {
		return func(p *Proc) {
			if id == 0 {
				sends := p.Broadcast([]int{0, 1, 2}, "x")
				if len(sends) != 2 {
					t.Errorf("broadcast len = %d, want 2", len(sends))
				}
				p.StepSend(sends...)
			}
			p.Halt()
		}
	})
}

func TestHaltedProcessDropsMail(t *testing.T) {
	// Messages to retired processes disappear; the engine must not leak or
	// mis-deliver them.
	res := run(t, Config{NumProcs: 2, NumUnits: 0}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) { p.Halt() }
		}
		return func(p *Proc) {
			p.StepSend(Send{To: 0, Payload: "late"})
			p.Halt()
		}
	})
	// Message was transmitted (counts) but had no effect.
	if res.Messages != 1 {
		t.Fatalf("messages = %d, want 1", res.Messages)
	}
}

func TestEmptyConfigCompletion(t *testing.T) {
	res := run(t, Config{NumProcs: 1, NumUnits: 0}, func(int) Script {
		return func(p *Proc) { p.Halt() }
	})
	if !res.Complete() {
		t.Fatal("zero-unit run should be trivially complete")
	}
}
