package sim

import (
	"errors"
	"reflect"
	"testing"
)

// subsetAdversary crashes one PID at its first sending action, delivering
// the given Deliver mask over the action's virtual send list.
type subsetAdversary struct {
	NopAdversary
	pid     int
	deliver []bool
	fired   bool
}

func (a *subsetAdversary) OnAction(_ int64, pid int, act Action) Verdict {
	if a.fired || pid != a.pid || act.SendCount() == 0 {
		return Survive()
	}
	a.fired = true
	return Verdict{Crash: true, KeepWork: true, Deliver: a.deliver}
}

// TestBroadcastDelivery pins the record plane's visible semantics: one
// StepBroadcast reaches every recipient except the sender, one round later,
// as ordinary per-sender-ordered messages carrying the same payload.
func TestBroadcastDelivery(t *testing.T) {
	const n = 4
	got := make([][]Message, n)
	res, err := New(Config{NumProcs: n, DetailedMetrics: true}, func(id int) Script {
		return func(p *Proc) {
			if id == 0 {
				// Recipient list includes the sender: it must be filtered.
				p.StepBroadcast([]int{0, 1, 2, 3}, "cp")
				return
			}
			got[id] = append(got[id], p.WaitUntil(2)...)
		}
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 3 {
		t.Fatalf("Messages = %d, want 3 (self filtered)", res.Messages)
	}
	if res.MessagesByKind["string"] != 3 {
		t.Fatalf("MessagesByKind = %v, want string:3", res.MessagesByKind)
	}
	if res.PerProc[0].Sent != 3 {
		t.Fatalf("sender Sent = %d, want 3", res.PerProc[0].Sent)
	}
	for id := 1; id < n; id++ {
		if len(got[id]) != 1 {
			t.Fatalf("proc %d received %d messages, want 1", id, len(got[id]))
		}
		m := got[id][0]
		if m.From != 0 || m.To != id || m.SentAt != 0 || m.Payload != "cp" {
			t.Fatalf("proc %d got %+v", id, m)
		}
	}
}

// TestBroadcastCrashSubset drives a crash-mid-broadcast verdict against the
// shared record: the Deliver mask applies per recipient, so an arbitrary
// subset of the recipients receives the message.
func TestBroadcastCrashSubset(t *testing.T) {
	const n = 5
	adv := &subsetAdversary{pid: 0, deliver: []bool{true, false, true, false}}
	heard := make([]bool, n)
	res, err := New(Config{NumProcs: n, Adversary: adv}, func(id int) Script {
		return func(p *Proc) {
			if id == 0 {
				p.StepBroadcast([]int{1, 2, 3, 4}, "boom")
				return
			}
			if msgs := p.WaitUntil(2); len(msgs) > 0 {
				heard[id] = true
			}
		}
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", res.Crashes)
	}
	want := []bool{false, true, false, true, false}
	if !reflect.DeepEqual(heard, want) {
		t.Fatalf("heard = %v, want %v", heard, want)
	}
	// The surviving subset counts as transmitted messages.
	if res.Messages != 2 {
		t.Fatalf("Messages = %d, want 2", res.Messages)
	}
}

// TestBroadcastCrashSubsetMixed covers a Deliver mask spanning explicit
// sends and a broadcast in one action: indices cover Sends first, then the
// broadcast per recipient.
func TestBroadcastCrashSubsetMixed(t *testing.T) {
	const n = 4
	adv := &subsetAdversary{pid: 0, deliver: []bool{false, true, true}}
	heard := make([]int, n)
	_, err := NewStepper(Config{NumProcs: n, Adversary: adv}, func(id int) Stepper {
		return ScriptStepper(func(p *Proc) {
			if id == 0 {
				p.yield(yieldMsg{kind: yieldAction, action: Action{
					Sends:     []Send{{To: 1, Payload: "pt"}},
					Broadcast: p.BroadcastTo([]int{2, 3}, "bc"),
				}})
				return
			}
			heard[id] = len(p.WaitUntil(2))
		})
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if heard[1] != 0 || heard[2] != 1 || heard[3] != 1 {
		t.Fatalf("heard = %v, want [_ 0 1 1]", heard)
	}
}

// TestBroadcastInvalidPID mirrors the flat plane's failure semantics.
func TestBroadcastInvalidPID(t *testing.T) {
	_, err := New(Config{NumProcs: 2}, func(id int) Script {
		return func(p *Proc) {
			if id == 0 {
				p.StepBroadcast([]int{1, 9}, "x")
			}
		}
	}).Run()
	if err == nil {
		t.Fatal("want invalid-pid error")
	}
}

// TestActionSendVirtualization pins SendCount/SendAt, which adversaries use
// to see broadcast and flat actions identically.
func TestActionSendVirtualization(t *testing.T) {
	a := Action{
		Sends:     []Send{{To: 7, Payload: "s"}},
		Broadcast: Broadcast{To: []int{1, 2}, Payload: "b"},
	}
	if a.SendCount() != 3 {
		t.Fatalf("SendCount = %d, want 3", a.SendCount())
	}
	want := []Send{{To: 7, Payload: "s"}, {To: 1, Payload: "b"}, {To: 2, Payload: "b"}}
	for i, w := range want {
		if got := a.SendAt(i); got != w {
			t.Fatalf("SendAt(%d) = %+v, want %+v", i, got, w)
		}
	}
}

// ringScripts is a small deterministic workload exercising sends,
// broadcasts, sleeps and work.
func ringScripts(n int) func(id int) Script {
	return func(id int) Script {
		return func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.StepWork(id + round*n + 1)
				if id == 0 {
					to := make([]int, n)
					for i := range to {
						to[i] = i
					}
					p.StepBroadcast(to, round)
				} else {
					p.StepSend(Send{To: (id + 1) % n, Payload: round})
				}
				p.WaitUntil(p.Now() + 1)
			}
		}
	}
}

// TestFlattenBroadcastsEquivalence pins the record plane against its
// per-send expansion on the same workload.
func TestFlattenBroadcastsEquivalence(t *testing.T) {
	cfg := Config{NumProcs: 4, NumUnits: 12, DetailedMetrics: true}
	native, err := New(cfg, ringScripts(4)).Run()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewStepper(cfg, func(id int) Stepper {
		return FlattenBroadcasts(ScriptStepper(ringScripts(4)(id)))
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(native, flat) {
		t.Fatalf("planes diverge:\nnative: %+v\nflat:   %+v", native, flat)
	}
}

// TestEngineResetDeterminism reuses one engine across runs — same shape,
// grown shape, shrunk shape, and after an aborted run — and requires every
// reused run to equal a fresh engine's Result exactly.
func TestEngineResetDeterminism(t *testing.T) {
	shapes := []Config{
		{NumProcs: 4, NumUnits: 12, DetailedMetrics: true},
		{NumProcs: 7, NumUnits: 21, DetailedMetrics: true}, // grow
		{NumProcs: 2, NumUnits: 6, DetailedMetrics: true},  // shrink
		{NumProcs: 4, NumUnits: 12, DetailedMetrics: true}, // back to start
	}
	eng := New(shapes[0], ringScripts(shapes[0].NumProcs))
	for i, cfg := range shapes {
		if i > 0 {
			scripts := ringScripts(cfg.NumProcs)
			eng.Reset(cfg, func(id int) Stepper { return ScriptStepper(scripts(id)) })
		}
		reused, err := eng.Run()
		if err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		fresh, err := New(cfg, ringScripts(cfg.NumProcs)).Run()
		if err != nil {
			t.Fatalf("shape %d fresh: %v", i, err)
		}
		if !reflect.DeepEqual(reused, fresh) {
			t.Fatalf("shape %d diverges:\nreused: %+v\nfresh:  %+v", i, reused, fresh)
		}
	}

	// Abort a run (round limit), then verify Reset still yields clean state.
	abortCfg := Config{NumProcs: 2, NumUnits: 4, MaxRound: 1}
	spin := func(id int) Script {
		return func(p *Proc) {
			for {
				p.StepIdle()
			}
		}
	}
	eng.Reset(abortCfg, func(id int) Stepper { return ScriptStepper(spin(id)) })
	if _, err := eng.Run(); !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("aborted run err = %v, want ErrRoundLimit", err)
	}
	cfg := shapes[0]
	scripts := ringScripts(cfg.NumProcs)
	eng.Reset(cfg, func(id int) Stepper { return ScriptStepper(scripts(id)) })
	reused, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := New(cfg, ringScripts(cfg.NumProcs)).Run()
	if !reflect.DeepEqual(reused, fresh) {
		t.Fatalf("post-abort reuse diverges:\nreused: %+v\nfresh:  %+v", reused, fresh)
	}
}
