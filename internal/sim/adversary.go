package sim

// Verdict is the adversary's ruling on a single committed action. The
// extended fault alphabet (DESIGN.md §3) is expressed through one verdict
// type so every fault kind flows through the same decision point on both
// execution planes: crash (fail-stop, possibly mid-broadcast), send-omission
// (Omit), crash-recovery (Crash + RestartAt) and rate degradation (Slow).
// Transient message loss is ruled at delivery time instead; see
// DeliveryAdversary.
type Verdict struct {
	// Crash kills the process at this round.
	Crash bool
	// KeepWork, meaningful only when Crash is set, records whether the work
	// unit of the action completed before the crash. (A process may crash
	// "immediately after performing a unit of work, before reporting it".)
	KeepWork bool
	// Deliver, meaningful when Crash or Omit is set, selects which of the
	// action's sends are transmitted: Deliver[i] corresponds to the action's
	// virtual send list (explicit Sends, then the broadcast per recipient).
	// nil delivers nothing. Under Crash this models crashing in the middle
	// of a broadcast, where an arbitrary subset of the recipients receives
	// the message.
	Deliver []bool
	// Omit, meaningful only when Crash is not set, suppresses the sends NOT
	// selected by Deliver while the process lives on: a send-omission fault.
	// The action's work unit always counts; suppressed sends are tallied in
	// Result.Omitted. The process itself never learns the sends were lost.
	Omit bool
	// Slow, when > 0 on a surviving process, sets its rate-degradation
	// factor from this action on: factor k > 1 stalls the process for k-1
	// rounds after every committed action (so it commits one action per k
	// rounds); 1 restores full speed. The factor persists until changed.
	Slow int
	// RestartAt, meaningful only when Crash is set, schedules the process
	// to restart at that (strictly later) round from a checkpoint of its
	// state taken at the crash. Restarting requires a Recoverable stepper;
	// a non-recoverable process stays crashed and the request is ignored.
	RestartAt int64
}

// Survive is the verdict that lets the whole action through.
func Survive() Verdict { return Verdict{} }

// Adversary decides crash failures. Implementations must be deterministic
// functions of their own state and the observed execution so that runs are
// reproducible. An Adversary may additionally implement DeliveryAdversary
// (transient message loss) and Restarter (round-scheduled crash recovery);
// both planes discover the optional interfaces by type assertion when a run
// starts.
type Adversary interface {
	// OnAction is consulted every time a running process commits an action.
	// The returned verdict may crash the process, possibly mid-broadcast.
	OnAction(round int64, pid int, action Action) Verdict

	// ScheduledCrashes lists processes that crash at the start of the given
	// round regardless of whether they act. It is used to crash sleeping
	// processes at specific times (this matters only for time metrics; a
	// silent process that crashes at its next action is indistinguishable
	// to the protocol from one that crashed while asleep).
	ScheduledCrashes(round int64) []int

	// NextScheduledCrash returns the earliest round strictly greater than
	// `after` with a scheduled crash, or -1 if there is none. The engine
	// uses it to avoid fast-forwarding past a scheduled crash.
	NextScheduledCrash(after int64) int64
}

// DeliveryAdversary is the optional message-loss extension of Adversary:
// OnDeliver is consulted once per message at the moment it would enter the
// recipient's inbox (after crash filtering — messages to retired processes
// are discarded before the adversary sees them, identically on both planes).
// Returning false drops the message; drops are tallied in Result.Dropped.
// Like OnAction, OnDeliver must be a deterministic function of adversary
// state and the observed execution — seeded randomness is fine, wall-clock
// or map-order dependence is not — so that runs replay identically.
type DeliveryAdversary interface {
	OnDeliver(round int64, m Message) bool
}

// Restarter is the optional crash-recovery extension of Adversary for
// round-scheduled crashes (the ScheduledCrashes path, which never sees a
// Verdict): it lists which processes restart at the start of a given round.
// Action-triggered restarts use Verdict.RestartAt instead. When an Adversary
// implements Restarter, the planes checkpoint every Recoverable process at
// crash time so any of them can be revived later.
type Restarter interface {
	// ScheduledRestarts lists processes that restart at the start of the
	// given round (if crashed and recoverable; others are ignored).
	ScheduledRestarts(round int64) []int
	// NextScheduledRestart returns the earliest round strictly greater
	// than `after` with a scheduled restart, or -1 if there is none. The
	// planes use it to avoid fast-forwarding past a revival.
	NextScheduledRestart(after int64) int64
}

// NopAdversary never crashes anything. It is the zero-failure environment
// and a convenient embedding base for action-driven adversaries.
type NopAdversary struct{}

var _ Adversary = NopAdversary{}

// OnAction implements Adversary.
func (NopAdversary) OnAction(int64, int, Action) Verdict { return Survive() }

// ScheduledCrashes implements Adversary.
func (NopAdversary) ScheduledCrashes(int64) []int { return nil }

// NextScheduledCrash implements Adversary.
func (NopAdversary) NextScheduledCrash(int64) int64 { return -1 }
