package sim

// Verdict is the adversary's ruling on a single committed action.
type Verdict struct {
	// Crash kills the process at this round.
	Crash bool
	// KeepWork, meaningful only when Crash is set, records whether the work
	// unit of the action completed before the crash. (A process may crash
	// "immediately after performing a unit of work, before reporting it".)
	KeepWork bool
	// Deliver, meaningful only when Crash is set, selects which of the
	// action's sends are transmitted: Deliver[i] corresponds to
	// Action.Sends[i]. nil delivers nothing. This models crashing in the
	// middle of a broadcast, where an arbitrary subset of the recipients
	// receives the message.
	Deliver []bool
}

// Survive is the verdict that lets the whole action through.
func Survive() Verdict { return Verdict{} }

// Adversary decides crash failures. Implementations must be deterministic
// functions of their own state and the observed execution so that runs are
// reproducible.
type Adversary interface {
	// OnAction is consulted every time a running process commits an action.
	// The returned verdict may crash the process, possibly mid-broadcast.
	OnAction(round int64, pid int, action Action) Verdict

	// ScheduledCrashes lists processes that crash at the start of the given
	// round regardless of whether they act. It is used to crash sleeping
	// processes at specific times (this matters only for time metrics; a
	// silent process that crashes at its next action is indistinguishable
	// to the protocol from one that crashed while asleep).
	ScheduledCrashes(round int64) []int

	// NextScheduledCrash returns the earliest round strictly greater than
	// `after` with a scheduled crash, or -1 if there is none. The engine
	// uses it to avoid fast-forwarding past a scheduled crash.
	NextScheduledCrash(after int64) int64
}

// NopAdversary never crashes anything. It is the zero-failure environment
// and a convenient embedding base for action-driven adversaries.
type NopAdversary struct{}

var _ Adversary = NopAdversary{}

// OnAction implements Adversary.
func (NopAdversary) OnAction(int64, int, Action) Verdict { return Survive() }

// ScheduledCrashes implements Adversary.
func (NopAdversary) ScheduledCrashes(int64) []int { return nil }

// NextScheduledCrash implements Adversary.
func (NopAdversary) NextScheduledCrash(int64) int64 { return -1 }
