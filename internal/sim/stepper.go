package sim

// This file implements the engine's second execution substrate: steppers.
//
// A Script models a process as a blocking function in its own goroutine and
// pays two channel handoffs plus a scheduler round-trip per simulated event.
// A Stepper models the same process as an explicit state machine driven by
// direct function call on the engine's own stack: the engine calls Step once
// per event and the stepper returns what the process does next as a plain
// value. No goroutine, no channels, and crashing a stepper-backed process is
// a state flip instead of a channel kill.
//
// The two substrates are interchangeable and may be mixed within one engine:
// New wraps every Script in a goroutine-backed shim (ScriptStepper) so
// existing process code runs unchanged, while hot protocols provide native
// steppers.

// YieldKind discriminates what a stepper's Step decided to do.
type YieldKind uint8

const (
	// YieldHalt terminates the process voluntarily. It is the zero value so
	// that a forgotten return halts rather than loops.
	YieldHalt YieldKind = iota
	// YieldAction commits an Action (work and/or sends) for this round; the
	// process runs again next round.
	YieldAction
	// YieldSleep suspends the process until round Until, or earlier if a
	// message is delivered to it.
	YieldSleep
)

// Yield is one process decision: the action/sleep/halt triple that a Script
// expresses by calling Step*/WaitUntil/Halt, as a plain return value.
type Yield struct {
	Kind   YieldKind
	Action Action // meaningful when Kind == YieldAction
	Until  int64  // meaningful when Kind == YieldSleep
}

// Stepper is the body of a simulated process in state-machine form. The
// engine calls Step exactly when a Script would be resumed: at round 0, after
// each committed action, when a message is delivered, and when a sleep
// expires. Step must return the process's next decision; it may call the
// non-blocking Proc methods (Drain, HasMail, Now, SetActive, Broadcast, ...)
// but not the blocking ones (Step*, WaitUntil, Halt).
type Stepper interface {
	Step(p *Proc) Yield
}

// ScriptStepper wraps a blocking Script as a Stepper backed by a goroutine.
// It is the compatibility shim behind New; it is exported so that engines
// built with NewStepper can mix native steppers with legacy scripts. The
// returned value must reach the engine as-is (or from a wrapper that
// forwards the scriptShim method of shimHolder): the engine needs the shim
// to route the script's blocking Proc calls and to release the goroutine on
// crash.
func ScriptStepper(s Script) Stepper { return newGoShim(s) }

// shimHolder is how the engine recognises a script-backed stepper, possibly
// behind a decorator: implement it by forwarding to the wrapped
// ScriptStepper's own scriptShim.
type shimHolder interface{ scriptShim() *goShim }

func (sh *goShim) scriptShim() *goShim { return sh }

// Recoverable marks a stepper whose entire state can be checkpointed and
// rewound, which is what makes crash-recovery faults (Verdict.RestartAt,
// Restarter) possible: the plane calls Snapshot at crash time and Restore
// when the scheduled restart round arrives, before the process steps again.
// Restore must leave the stepper exactly as it was when Snapshot was taken,
// and the snapshot must be insulated from later mutation of the live stepper
// (deep-copy any mutable state). Script-backed steppers are never
// Recoverable — a goroutine stack cannot be checkpointed — so script
// processes ignore restart requests and stay crashed.
type Recoverable interface {
	Stepper
	// Snapshot returns an opaque checkpoint of the stepper's state.
	Snapshot() any
	// Restore rewinds the stepper to a value returned by Snapshot.
	Restore(snap any)
}

// Slowed wraps a stepper so every productive step is followed by k-1 idle
// actions: the statically-assigned rate-degradation model (the
// quarter-efficiency idiom is k = 4), as opposed to the adversary-driven
// Verdict.Slow which stalls the process between actions from the outside.
// A Slowed process still occupies its rounds — each pad action passes
// through the adversary like any other committed action — so its per-proc
// Actions count grows k-fold while its protocol progress drops k-fold.
// k <= 1 returns the stepper unchanged. Script-backed steppers may be
// wrapped (the shim is forwarded); a Recoverable stepper stays recoverable,
// with the pad counter checkpointed alongside the inner state.
func Slowed(st Stepper, k int) Stepper {
	if k <= 1 {
		return st
	}
	s := &slowed{inner: st, k: k}
	if sh, ok := st.(shimHolder); ok {
		return &slowedShim{slowed: s, shim: sh.scriptShim()}
	}
	if _, ok := st.(Recoverable); ok {
		return slowedRec{s}
	}
	return s
}

type slowed struct {
	inner Stepper
	k     int
	pad   int // idle actions still owed before the next productive step
}

func (s *slowed) Step(p *Proc) Yield {
	if s.pad > 0 {
		s.pad--
		return Yield{Kind: YieldAction}
	}
	y := s.inner.Step(p)
	if y.Kind == YieldAction {
		s.pad = s.k - 1
	}
	return y
}

type slowedShim struct {
	*slowed
	shim *goShim
}

func (s *slowedShim) scriptShim() *goShim { return s.shim }

// slowedSnap checkpoints a slowed Recoverable stepper: inner state plus the
// owed pad count, so a restart resumes mid-degradation cycle exactly.
type slowedSnap struct {
	inner any
	pad   int
}

type slowedRec struct{ *slowed }

func (s slowedRec) Snapshot() any {
	return slowedSnap{inner: s.inner.(Recoverable).Snapshot(), pad: s.pad}
}

func (s slowedRec) Restore(snap any) {
	sn := snap.(slowedSnap)
	s.inner.(Recoverable).Restore(sn.inner)
	s.pad = sn.pad
}

// FlattenBroadcasts wraps a stepper so every broadcast-valued action it
// yields is expanded into the equivalent per-send action before reaching the
// engine. The flat plane is the reference semantics of the broadcast record
// plane: running a protocol both ways must produce reflect.DeepEqual Results
// (the plane-equivalence tests use exactly this wrapper). Script-backed
// steppers may be wrapped too; the shim is forwarded.
func FlattenBroadcasts(s Stepper) Stepper {
	if sh, ok := s.(shimHolder); ok {
		return flattenShim{flatten{s}, sh.scriptShim()}
	}
	return flatten{s}
}

type flatten struct{ inner Stepper }

func (f flatten) Step(p *Proc) Yield {
	y := f.inner.Step(p)
	if y.Kind != YieldAction || len(y.Action.Broadcast.To) == 0 {
		return y
	}
	sends := make([]Send, 0, y.Action.SendCount())
	for i, n := 0, y.Action.SendCount(); i < n; i++ {
		sends = append(sends, y.Action.SendAt(i))
	}
	return Yield{Kind: YieldAction, Action: Action{WorkUnit: y.Action.WorkUnit, Sends: sends}}
}

type flattenShim struct {
	flatten
	shim *goShim
}

func (f flattenShim) scriptShim() *goShim { return f.shim }

// goShim runs a Script in its own goroutine and adapts the channel handshake
// to the Stepper interface. The goroutine is started lazily on the first
// Step, so a process that crashes before ever running costs nothing.
type goShim struct {
	script   Script
	toEngine chan yieldMsg
	resume   chan resumeMsg
	done     chan struct{}
	started  bool
}

func newGoShim(s Script) *goShim {
	return &goShim{
		script:   s,
		toEngine: make(chan yieldMsg),
		resume:   make(chan resumeMsg),
		done:     make(chan struct{}),
	}
}

// Step implements Stepper: hand control to the script goroutine until it
// yields. A script panic is re-raised on the engine's stack (after the
// goroutine has fully unwound) so both substrates share one failure path.
func (sh *goShim) Step(p *Proc) Yield {
	if !sh.started {
		sh.started = true
		go sh.run(p)
	}
	sh.resume <- resumeMsg{}
	y := <-sh.toEngine
	switch y.kind {
	case yieldAction:
		return Yield{Kind: YieldAction, Action: y.action}
	case yieldSleep:
		return Yield{Kind: YieldSleep, Until: y.until}
	case yieldPanic:
		<-sh.done
		panic(y.panicVal)
	default:
		return Yield{Kind: YieldHalt}
	}
}

// run is the goroutine body wrapping the script.
func (sh *goShim) run(p *Proc) {
	defer close(sh.done)
	defer func() {
		if r := recover(); r != nil {
			// Surface script panics to the engine as fatal errors rather
			// than deadlocking the lock-step handshake.
			sh.toEngine <- yieldMsg{kind: yieldPanic, panicVal: r}
		}
	}()
	sig := <-sh.resume
	if sig.kill {
		return
	}
	sh.script(p)
	sh.toEngine <- yieldMsg{kind: yieldHalt}
}

// kill releases the script goroutine on crash or host shutdown. Safe to
// call whether the goroutine is blocked awaiting resumption, mid-yield,
// never started, or already exited (a returned/halted/panicked script; the
// engine never kills those, but an external host's Release tears every
// process down the same way).
func (sh *goShim) kill() {
	if !sh.started {
		return
	}
	select {
	case sh.resume <- resumeMsg{kill: true}:
		<-sh.done
	case y := <-sh.toEngine:
		// The script yielded while we were shutting down.
		if y.kind != yieldHalt && y.kind != yieldPanic {
			sh.resume <- resumeMsg{kill: true}
		}
		<-sh.done
	case <-sh.done:
		// The goroutine already unwound on its own.
	}
}
