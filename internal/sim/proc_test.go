package sim

import (
	"strings"
	"testing"
)

func TestTapSeesDrainedMessages(t *testing.T) {
	var tapped []any
	run(t, Config{NumProcs: 2, NumUnits: 0}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				p.StepSend(Send{To: 1, Payload: "a"})
				p.StepSend(Send{To: 1, Payload: "b"})
				p.Halt()
			}
		}
		return func(p *Proc) {
			p.SetTap(func(m Message) { tapped = append(tapped, m.Payload) })
			p.WaitUntil(5)
			p.WaitUntil(6)
			p.Halt()
		}
	})
	if len(tapped) != 2 || tapped[0] != "a" || tapped[1] != "b" {
		t.Fatalf("tapped = %v", tapped)
	}
}

func TestWaitUntilImmediateWithPendingMail(t *testing.T) {
	// WaitUntil must return already-delivered mail without blocking even
	// when the deadline is in the past.
	var got int
	run(t, Config{NumProcs: 2, NumUnits: 0}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				p.StepSend(Send{To: 1, Payload: 1})
				p.Halt()
			}
		}
		return func(p *Proc) {
			p.StepIdle()
			p.StepIdle() // mail arrives while busy
			got = len(p.WaitUntil(0))
			p.Halt()
		}
	})
	if got != 1 {
		t.Fatalf("got %d messages", got)
	}
}

func TestStepWorkRejectsNonPositiveUnit(t *testing.T) {
	_, err := New(Config{NumProcs: 1, NumUnits: 1}, func(int) Script {
		return func(p *Proc) { p.StepWork(0) }
	}).Run()
	if err == nil || !strings.Contains(err.Error(), "non-positive") {
		t.Fatalf("want misuse error, got %v", err)
	}
	_, err = New(Config{NumProcs: 1, NumUnits: 1}, func(int) Script {
		return func(p *Proc) { p.StepWorkSend(-3) }
	}).Run()
	if err == nil {
		t.Fatal("want misuse error for StepWorkSend")
	}
}

func TestSendToInvalidPID(t *testing.T) {
	_, err := New(Config{NumProcs: 1, NumUnits: 0}, func(int) Script {
		return func(p *Proc) { p.StepSend(Send{To: 9, Payload: "x"}) }
	}).Run()
	if err == nil || !strings.Contains(err.Error(), "invalid pid") {
		t.Fatalf("want invalid pid error, got %v", err)
	}
}

func TestUnitsAndNAccessors(t *testing.T) {
	run(t, Config{NumProcs: 3, NumUnits: 7}, func(id int) Script {
		return func(p *Proc) {
			if p.N() != 3 || p.Units() != 7 || p.ID() != id {
				t.Errorf("accessors wrong: N=%d Units=%d ID=%d", p.N(), p.Units(), p.ID())
			}
			p.Halt()
		}
	})
}

func TestLabelReachesTrace(t *testing.T) {
	var labels []string
	_, err := New(Config{
		NumProcs: 1, NumUnits: 1,
		Tracer: func(e Event) { labels = append(labels, e.Label) },
	}, func(int) Script {
		return func(p *Proc) {
			p.SetLabel("active")
			p.StepWork(1)
			p.Halt()
		}
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) == 0 || labels[0] != "active" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestManyProcessesManyRounds(t *testing.T) {
	// Stress: 512 processes ping-ponging for 50 rounds each.
	const nProcs = 512
	res := run(t, Config{NumProcs: nProcs, NumUnits: 0}, func(id int) Script {
		return func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.StepSend(Send{To: (id + 1) % nProcs, Payload: i})
				p.WaitUntil(p.Now()) // drain
			}
			p.Halt()
		}
	})
	if res.Messages != nProcs*50 {
		t.Fatalf("messages = %d, want %d", res.Messages, nProcs*50)
	}
}

func TestCrashDuringSleepDoesNotWakeOthersSpuriously(t *testing.T) {
	// Process 1 sleeps to round 100; its crash at round 10 must not change
	// process 0's timeline.
	adv := &schedAdversary{at: map[int64][]int{10: {1}}}
	res := run(t, Config{NumProcs: 2, NumUnits: 0, Adversary: adv}, func(id int) Script {
		if id == 0 {
			return func(p *Proc) {
				p.WaitUntil(30)
				if p.Now() != 30 {
					t.Errorf("woke at %d", p.Now())
				}
				p.Halt()
			}
		}
		return func(p *Proc) {
			p.WaitUntil(100)
			p.Halt()
		}
	})
	if res.PerProc[1].Status != StatusCrashed {
		t.Fatal("proc 1 should have crashed")
	}
}

func TestZeroProcesses(t *testing.T) {
	res, err := New(Config{NumProcs: 0, NumUnits: 0}, func(int) Script {
		return func(p *Proc) { p.Halt() }
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || !res.Complete() {
		t.Fatalf("empty run: %+v", res)
	}
}

func TestSelfSendDelivery(t *testing.T) {
	// A process may send to itself; the message arrives next round.
	var got bool
	run(t, Config{NumProcs: 1, NumUnits: 0}, func(int) Script {
		return func(p *Proc) {
			p.StepSend(Send{To: 0, Payload: "me"})
			msgs := p.WaitUntil(5)
			got = len(msgs) == 1 && msgs[0].Payload == "me"
			p.Halt()
		}
	})
	if !got {
		t.Fatal("self-send not delivered")
	}
}
