// Package sim implements a deterministic synchronous round simulator for
// message-passing systems with crash faults.
//
// The model follows Dwork, Halpern and Waarts ("Performing Work Efficiently in
// the Presence of Faults"): in every round a process may perform at most one
// unit of work, send messages (a broadcast), and receive messages. A message
// sent in round r is delivered at the beginning of round r+1. A process that
// crashes while broadcasting delivers its messages to an arbitrary subset of
// the recipients, chosen by the adversary.
//
// Processes are written as ordinary sequential Go functions (Script) running
// in their own goroutines; the engine and the scripts alternate in strict
// lock-step, so executions are fully deterministic. The engine fast-forwards
// over rounds in which every process is asleep, which makes protocols with
// exponential deadlines (Protocol C) executable.
package sim

import (
	"fmt"
	"reflect"
	"sync"
)

// Message is a point-to-point message as seen by the recipient.
type Message struct {
	From    int
	To      int
	SentAt  int64 // round in which the sender committed the send
	Payload any
}

// Send describes an outgoing message within an Action.
type Send struct {
	To      int
	Payload any
}

// Broadcast is the one-payload, many-recipient half of an Action. The DHW
// protocols are broadcast-shaped — one checkpoint or view goes to a whole
// group every round — so the engine stores a committed broadcast as a single
// shared record in the next-round buffer instead of one boxed Message per
// recipient; see Engine.commit.
//
// The recipient slice is referenced, not copied: it must not be mutated
// until the sending process is stepped again (Proc.BroadcastTo's scratch
// buffer and the protocols' immutable PID caches both satisfy this by
// construction). An empty To means no broadcast.
type Broadcast struct {
	To      []int
	Payload any
}

// Action is everything a process commits in a single round: at most one unit
// of work, any number of point-to-point sends, plus at most one broadcast.
// The zero Action is an idle round.
type Action struct {
	WorkUnit  int // 0 means no work; unit IDs are 1-based
	Sends     []Send
	Broadcast Broadcast
}

// SendCount returns the number of point-to-point messages the action
// transmits: the explicit sends plus one per broadcast recipient.
func (a Action) SendCount() int { return len(a.Sends) + len(a.Broadcast.To) }

// SendAt flattens the action's outgoing messages into one virtual list —
// the explicit sends first, then the broadcast expanded per recipient — and
// returns the i-th entry. Adversaries index Verdict.Deliver by this list, so
// a broadcast-native action and its per-send expansion receive identical
// crash verdicts (the plane-equivalence tests pin this down).
func (a Action) SendAt(i int) Send {
	if i < len(a.Sends) {
		return a.Sends[i]
	}
	return Send{To: a.Broadcast.To[i-len(a.Sends)], Payload: a.Broadcast.Payload}
}

// Kinder lets payloads report a short kind string for per-kind message
// accounting. Payloads that do not implement it are classified by their
// dynamic type.
type Kinder interface {
	Kind() string
}

// kindCache memoises the fmt.Sprintf("%T") string per dynamic type for
// payloads that do not implement Kinder, so counted sends stop formatting a
// fresh string each time. It is a sync.Map because engines run concurrently
// under the batch fan-out.
var kindCache sync.Map // map[reflect.Type]string

// PayloadKind returns the payload's kind string — the Kinder result, or
// the dynamic type name — as used in Result.MessagesByKind. Exported for
// execution planes outside this package (internal/live) that must account
// messages identically to the Engine.
func PayloadKind(p any) string { return payloadKind(p) }

func payloadKind(p any) string {
	if k, ok := p.(Kinder); ok {
		return k.Kind()
	}
	t := reflect.TypeOf(p)
	if s, ok := kindCache.Load(t); ok {
		return s.(string)
	}
	s := fmt.Sprintf("%T", p)
	kindCache.Store(t, s)
	return s
}

// Status describes the lifecycle state of a simulated process.
type Status int

const (
	// StatusRunning means the process has neither crashed nor terminated.
	StatusRunning Status = iota + 1
	// StatusCrashed means the adversary crashed the process.
	StatusCrashed
	// StatusTerminated means the process halted voluntarily.
	StatusTerminated
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusCrashed:
		return "crashed"
	case StatusTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Forever is a deadline far enough in the future that it never fires; it is
// also the saturation value for overflow-prone deadline arithmetic.
const Forever int64 = 1 << 61
