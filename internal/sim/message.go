// Package sim implements a deterministic synchronous round simulator for
// message-passing systems with crash faults.
//
// The model follows Dwork, Halpern and Waarts ("Performing Work Efficiently in
// the Presence of Faults"): in every round a process may perform at most one
// unit of work, send messages (a broadcast), and receive messages. A message
// sent in round r is delivered at the beginning of round r+1. A process that
// crashes while broadcasting delivers its messages to an arbitrary subset of
// the recipients, chosen by the adversary.
//
// Processes are written as ordinary sequential Go functions (Script) running
// in their own goroutines; the engine and the scripts alternate in strict
// lock-step, so executions are fully deterministic. The engine fast-forwards
// over rounds in which every process is asleep, which makes protocols with
// exponential deadlines (Protocol C) executable.
package sim

import "fmt"

// Message is a point-to-point message as seen by the recipient.
type Message struct {
	From    int
	To      int
	SentAt  int64 // round in which the sender committed the send
	Payload any
}

// Send describes an outgoing message within an Action.
type Send struct {
	To      int
	Payload any
}

// Action is everything a process commits in a single round: at most one unit
// of work plus any number of sends. The zero Action is an idle round.
type Action struct {
	WorkUnit int // 0 means no work; unit IDs are 1-based
	Sends    []Send
}

// Kinder lets payloads report a short kind string for per-kind message
// accounting. Payloads that do not implement it are classified by their
// dynamic type.
type Kinder interface {
	Kind() string
}

func payloadKind(p any) string {
	if k, ok := p.(Kinder); ok {
		return k.Kind()
	}
	return fmt.Sprintf("%T", p)
}

// Status describes the lifecycle state of a simulated process.
type Status int

const (
	// StatusRunning means the process has neither crashed nor terminated.
	StatusRunning Status = iota + 1
	// StatusCrashed means the adversary crashed the process.
	StatusCrashed
	// StatusTerminated means the process halted voluntarily.
	StatusTerminated
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusCrashed:
		return "crashed"
	case StatusTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Forever is a deadline far enough in the future that it never fires; it is
// also the saturation value for overflow-prone deadline arithmetic.
const Forever int64 = 1 << 61
