package batch

import (
	"fmt"

	"repro"
)

// GridPoint is one (n, t) instance size.
type GridPoint struct {
	Units   int // n
	Workers int // t
}

// FailureSpec names a failure-pattern family and builds fresh instances of
// it. New is called once per run (failure adversaries are stateful and
// single-use) with the grid point and the run's seed; patterns that ignore
// randomness ignore the seed.
type FailureSpec struct {
	Name string
	New  func(g GridPoint, seed int64) doall.Failures
}

// NoFailureSpec is the failure-free environment.
func NoFailureSpec() FailureSpec {
	return FailureSpec{Name: "none", New: func(GridPoint, int64) doall.Failures {
		return doall.NoFailures()
	}}
}

// CascadeFailureSpec is the paper's worst-case redo chain: every process
// crashes at its first send after max(1, n/t) units, t−1 failures total.
func CascadeFailureSpec() FailureSpec {
	return FailureSpec{Name: "cascade", New: func(g GridPoint, _ int64) doall.Failures {
		between := g.Units / g.Workers
		if between < 1 {
			between = 1
		}
		return doall.CascadeFailures(between, g.Workers-1)
	}}
}

// RandomFailureSpec crashes each committed action with probability p, at
// most t−1 times, seeded per run.
func RandomFailureSpec(p float64) FailureSpec {
	return FailureSpec{
		Name: fmt.Sprintf("random(p=%g)", p),
		New: func(g GridPoint, seed int64) doall.Failures {
			return doall.RandomFailures(p, g.Workers-1, seed)
		},
	}
}

// Sweep crosses protocols × failure patterns × grid points × seeds into a
// deterministic job list. The cross order is fixed (grid outermost, then
// protocol, then failure pattern, then seed) so the same sweep always
// produces the same jobs in the same order.
type Sweep struct {
	Protocols []doall.Protocol
	Failures  []FailureSpec
	Grid      []GridPoint
	// Seeds gives each (protocol, failure, point) cell one run per seed;
	// empty means the single seed 1. Seeds only influence randomised
	// failure patterns but are always recorded in the job name.
	Seeds []int64
	// CheckInvariants enables the at-most-one-active check on single-active
	// protocols.
	CheckInvariants bool
	// MaxRound aborts runaway runs (0 = engine default). Protocol C's
	// deadlines are exponential in n + t by design; cap the grid, not the
	// rounds, when sweeping it.
	MaxRound int64
}

// Jobs expands the sweep. Every job carries a NewFailures builder, so the
// returned set can be executed repeatedly.
func (s Sweep) Jobs() []Job {
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	var jobs []Job
	for _, g := range s.Grid {
		for _, proto := range s.Protocols {
			for _, f := range s.Failures {
				for _, seed := range seeds {
					cfg := doall.Config{
						Units:           g.Units,
						Workers:         g.Workers,
						Protocol:        proto,
						CheckInvariants: s.CheckInvariants,
						MaxRound:        s.MaxRound,
					}
					if proto == doall.UniformCheckpoint {
						cfg.CheckpointK = g.Workers
					}
					jobs = append(jobs, Job{
						Name: fmt.Sprintf("%v/%s/n=%d,t=%d,seed=%d",
							proto, f.Name, g.Units, g.Workers, seed),
						Config:      cfg,
						NewFailures: func() doall.Failures { return f.New(g, seed) },
					})
				}
			}
		}
	}
	return jobs
}
