package batch

import (
	"fmt"
	"reflect"
	"testing"

	"repro"
)

func TestMapOrderingAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out := Map(workers, 100, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map[int](4, 0, func(int) int { return 1 }); out != nil {
		t.Fatalf("Map over zero items = %v, want nil", out)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("worker panic did not propagate")
		}
	}()
	Map(4, 16, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

func sweepForTest() Sweep {
	return Sweep{
		Protocols: []doall.Protocol{
			doall.ProtocolA, doall.ProtocolB, doall.ProtocolD,
			doall.Trivial, doall.SingleCheckpoint,
		},
		Failures: []FailureSpec{
			NoFailureSpec(), CascadeFailureSpec(), RandomFailureSpec(0.02),
		},
		Grid:            []GridPoint{{Units: 48, Workers: 8}, {Units: 96, Workers: 16}},
		Seeds:           []int64{1, 7},
		CheckInvariants: true,
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the batch layer's core
// contract: the same seeded sweep must aggregate to identical results
// whether it runs on one worker or many.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := sweepForTest().Jobs()
	if len(jobs) != 2*5*3*2 {
		t.Fatalf("sweep expanded to %d jobs, want %d", len(jobs), 2*5*3*2)
	}
	sequential := Run(jobs, Options{Workers: 1})
	for _, workers := range []int{2, 8} {
		parallel := Run(jobs, Options{Workers: workers})
		if len(parallel) != len(sequential) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(parallel), len(sequential))
		}
		for i := range sequential {
			if sequential[i].Name != parallel[i].Name {
				t.Fatalf("workers=%d: result %d is %q, want %q (ordering broke)",
					workers, i, parallel[i].Name, sequential[i].Name)
			}
			if !reflect.DeepEqual(sequential[i].Result, parallel[i].Result) {
				t.Fatalf("workers=%d: %s diverged:\nseq: %+v\npar: %+v",
					workers, sequential[i].Name, sequential[i].Result, parallel[i].Result)
			}
			if (sequential[i].Err == nil) != (parallel[i].Err == nil) {
				t.Fatalf("workers=%d: %s errors diverged: %v vs %v",
					workers, sequential[i].Name, sequential[i].Err, parallel[i].Err)
			}
		}
	}
}

// TestSweepJobsRerunnable checks that a job set can be executed twice with
// identical outcomes: NewFailures must rebuild the stateful adversary.
func TestSweepJobsRerunnable(t *testing.T) {
	jobs := Sweep{
		Protocols: []doall.Protocol{doall.ProtocolB},
		Failures:  []FailureSpec{CascadeFailureSpec(), RandomFailureSpec(0.05)},
		Grid:      []GridPoint{{Units: 64, Workers: 8}},
	}.Jobs()
	first := Run(jobs, Options{Workers: 1})
	second := Run(jobs, Options{Workers: 1})
	for i := range first {
		if !reflect.DeepEqual(first[i].Result, second[i].Result) {
			t.Fatalf("%s not rerunnable:\n1st: %+v\n2nd: %+v",
				first[i].Name, first[i].Result, second[i].Result)
		}
	}
}

func TestSweepGuaranteeHolds(t *testing.T) {
	for _, r := range Run(sweepForTest().Jobs(), Options{Workers: 0}) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if r.GuaranteeViolated() {
			t.Fatalf("%s: survivors exist but work incomplete: %+v", r.Name, r.Result)
		}
	}
}

func TestRunRecordsPerJobErrors(t *testing.T) {
	jobs := []Job{
		{Name: "bad", Config: doall.Config{Units: 8, Workers: 0, Protocol: doall.ProtocolB}},
		{Name: "good", Config: doall.Config{Units: 8, Workers: 2, Protocol: doall.ProtocolB},
			NewFailures: func() doall.Failures { return doall.NoFailures() }},
	}
	out := Run(jobs, Options{Workers: 2})
	if out[0].Err == nil {
		t.Fatal("invalid job should record an error")
	}
	if out[1].Err != nil || !out[1].Result.Complete {
		t.Fatalf("valid job failed: %+v", out[1])
	}
}

func TestSweepJobNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, j := range sweepForTest().Jobs() {
		if seen[j.Name] {
			t.Fatalf("duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
	}
}

func ExampleSweep() {
	jobs := Sweep{
		Protocols: []doall.Protocol{doall.ProtocolB, doall.ProtocolD},
		Failures:  []FailureSpec{CascadeFailureSpec()},
		Grid:      []GridPoint{{Units: 64, Workers: 16}},
	}.Jobs()
	for _, r := range Run(jobs, Options{}) {
		fmt.Printf("%s: work=%d complete=%v\n", r.Name, r.Result.Work, r.Result.Complete)
	}
	// Output:
	// B/cascade/n=64,t=16,seed=1: work=160 complete=true
	// D/cascade/n=64,t=16,seed=1: work=124 complete=true
}
