// Package batch is the parallel run-orchestration layer: it shards
// independent simulator runs across GOMAXPROCS workers while keeping output
// deterministic. Each run is itself a fully deterministic lock-step
// simulation, so executing runs concurrently and collecting results by index
// yields byte-identical output regardless of the worker count — the property
// the determinism tests pin down.
//
// Runs executed through doall.Run reuse pooled engines (Engine.Reset):
// sync.Pool's per-P caches hand each batch worker its own recycled engine,
// so per-run setup allocation in sweeps is near zero while results stay
// identical to fresh-engine runs.
//
// Map is the generic primitive; Run executes named doall.Config jobs; Sweep
// (sweep.go) builds job sets crossing protocols × failure patterns × (n, t)
// grids with per-run seeds. internal/experiments and both binaries sit on
// top of this package.
package batch

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro"
)

// Options configures a fan-out.
type Options struct {
	// Workers caps the number of concurrent runs; 0 or negative means
	// GOMAXPROCS. Workers = 1 degenerates to a plain sequential loop.
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(0..n-1) on up to workers goroutines and returns the
// results in index order. fn must be safe for concurrent invocation across
// distinct indices; result ordering is stable by construction, so a
// deterministic fn gives deterministic output for every worker count.
// A panic in fn is re-raised on the calling goroutine.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// The re-panic below fires from the caller's goroutine,
					// so capture the origin stack here or lose it.
					panicMu.Lock()
					if panicV == nil {
						panicV = fmt.Sprintf("batch: worker panic: %v\n%s", r, debug.Stack())
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	return out
}

// MapChunks evaluates fn over [lo, hi) split into fixed-size chunks —
// fn(c·chunk-aligned lo', hi') per chunk — on up to workers goroutines,
// returning results in chunk order. Chunk boundaries depend only on lo and
// chunk, never on the worker count, so a deterministic fn gives
// deterministic output for every worker count; internal/explore shards its
// schedule-space walks through this.
func MapChunks[T any](workers int, lo, hi, chunk int64, fn func(lo, hi int64) T) []T {
	if hi <= lo {
		return nil
	}
	if chunk <= 0 {
		chunk = 1
	}
	n := int((hi - lo + chunk - 1) / chunk)
	return Map(workers, n, func(i int) T {
		a := lo + int64(i)*chunk
		b := min(a+chunk, hi)
		return fn(a, b)
	})
}

// Job is one named protocol run. Config.Failures must be left nil when
// NewFailures is set: failure specs are stateful and single-use, so the
// runner builds a fresh one per execution, which keeps jobs re-runnable
// (benchmarks rerun the same job set many times).
type Job struct {
	Name        string
	Config      doall.Config
	NewFailures func() doall.Failures
}

// RunResult pairs a job with its outcome.
type RunResult struct {
	Name   string
	Config doall.Config
	Result doall.Result
	Err    error
}

// GuaranteeViolated reports the paper's core guarantee failing: survivors
// exist but some unit of work was never performed.
func (r RunResult) GuaranteeViolated() bool {
	return r.Err == nil && r.Result.Survivors > 0 && !r.Result.Complete
}

// Run executes every job, fanning out across opt.Workers, and returns
// results in job order. Individual run errors are recorded per result, not
// returned: a sweep that hits one invalid configuration still reports the
// other runs.
func Run(jobs []Job, opt Options) []RunResult {
	return Map(opt.workers(), len(jobs), func(i int) RunResult {
		j := jobs[i]
		cfg := j.Config
		if j.NewFailures != nil {
			cfg.Failures = j.NewFailures()
		}
		res, err := doall.Run(cfg)
		return RunResult{Name: j.Name, Config: cfg, Result: res, Err: err}
	})
}
